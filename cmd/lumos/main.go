// Command lumos is the toolkit CLI:
//
//	lumos tracegen  -model 15b -tp 2 -pp 2 -dp 4 -mb 8 -seed 42 -out traces/
//	    simulate one training iteration on the cluster substrate and write
//	    per-rank Kineto-style JSON traces
//	lumos replay    -in traces/ [-baseline dpro]
//	    build the execution graph and replay it, printing iteration time and
//	    the execution breakdown
//	lumos breakdown -in traces/ [-per-rank]
//	    print the exposed compute / overlapped / exposed comm / other
//	    decomposition of a collected or simulated trace
//	lumos smutil    -in traces/ -rank 0 -window 1ms
//	    print per-window SM utilization for one rank
//	lumos predict   -in traces/ -model 15b -tp 2 -pp 2 -dp 4 -mb 8 \
//	                [-new-dp N] [-new-pp N] [-new-arch v3]
//	    manipulate the profiled execution into a new configuration and
//	    predict its performance
//	lumos whatif    -in traces/ -class gemm -factor 0.5
//	    estimate the iteration time if all kernels of a class ran at the
//	    given duration factor
//	lumos sweep     -model 15b -tp 2 -pp 2 -dp 4 -mb 8 [-in traces/] \
//	                [-pp-range 2,4,8] [-dp-range 4,8,16] [-arch v1,v2,v3,v4] \
//	                [-schedule 1f1b,interleaved2,zb-h1] \
//	                [-fabric flat,nvl72,spine4] [-degrade 1,0.75,0.5] \
//	                [-whatif] [-top 10] [-workers 0] [-trace out.json] [-metrics] [-v]
//	    profile the base deployment once (or reuse -in traces), then
//	    evaluate a whole what-if campaign — a TP×PP×DP grid, architecture
//	    variants, pipeline schedules, network fabrics and degradation
//	    factors, and kernel counterfactuals — concurrently against shared
//	    calibration, printing results ranked by predicted iteration time
//	lumos plan      -model 15b -tp 2 -pp 2 -dp 2 -mb 8 [-in traces/] \
//	                [-pp-range 1,2,4] [-dp-range 1,2,4] [-mb-range 4,8] \
//	                [-schedule 1f1b,interleaved2,zb-h1] \
//	                [-fabric flat,nvl72] [-degrade 1,0.5] \
//	                [-strategy auto|exhaustive|beam|halving] [-beam 8] [-eta 3] \
//	                [-budget 0] [-gpu-mem-gib 80] [-zero 0|1|2] [-top 10] \
//	                [-trace search.json] [-explain explain.json] [-metrics]
//	    guided deployment search: expand the parallelism × microbatch ×
//	    schedule × fabric space lazily, rule out configurations that would
//	    OOM with the analytic memory model, rank the rest by roofline cost
//	    bounds with schedule-specific bubble terms, simulate only the
//	    survivors the strategy promotes, and print the Pareto frontier over
//	    (iteration time, GPUs, peak memory); -explain additionally writes a
//	    structured report of every simulated point (analytic bound vs
//	    simulated time) and every pruned subtree
//	lumos trace top [-n 15] <trace.json>
//	    analyze a Chrome trace-event export (from -trace or lumosd
//	    GET /v1/traces/{id}): print the top-N spans by self-time with
//	    per-category rollups
//
// All subcommands honor Ctrl-C: the context is canceled and in-flight
// sweeps stop.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lumos"
	"lumos/internal/analysis"
	"lumos/internal/replay"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lumos <tracegen|replay|breakdown|smutil|predict|whatif|sweep|plan|trace> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "tracegen":
		err = cmdTracegen(ctx, args)
	case "replay":
		err = cmdReplay(ctx, args)
	case "breakdown":
		err = cmdBreakdown(args)
	case "smutil":
		err = cmdSMUtil(args)
	case "predict":
		err = cmdPredict(ctx, args)
	case "whatif":
		err = cmdWhatIf(ctx, args)
	case "sweep":
		err = cmdSweep(ctx, args)
	case "plan":
		err = cmdPlan(ctx, args)
	case "trace":
		err = cmdTrace(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lumos %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func archByName(name string) (lumos.Arch, error) {
	return lumos.ArchPreset(name)
}

// deployFlags registers the deployment flag set shared by tracegen/predict/sweep.
func deployFlags(fs *flag.FlagSet) (mdl *string, tp, pp, dp, mb *int, seed *uint64) {
	mdl = fs.String("model", "15b", "architecture preset")
	tp = fs.Int("tp", 2, "tensor parallelism")
	pp = fs.Int("pp", 2, "pipeline parallelism")
	dp = fs.Int("dp", 4, "data parallelism")
	mb = fs.Int("mb", 8, "microbatches per rank")
	seed = fs.Uint64("seed", 42, "simulation seed")
	return
}

func buildConfig(mdl string, tp, pp, dp, mb int) (lumos.Config, error) {
	arch, err := archByName(mdl)
	if err != nil {
		return lumos.Config{}, err
	}
	cfg, err := lumos.DeploymentConfig(arch, tp, pp, dp)
	if err != nil {
		return lumos.Config{}, err
	}
	cfg.Microbatches = mb
	return cfg, nil
}

func cmdTracegen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ExitOnError)
	mdl, tp, pp, dp, mb, seed := deployFlags(fs)
	out := fs.String("out", "traces", "output directory for rank_<N>.json")
	fs.Parse(args)

	cfg, err := buildConfig(*mdl, *tp, *pp, *dp, *mb)
	if err != nil {
		return err
	}
	tk := lumos.New()
	t0 := time.Now()
	traces, err := tk.Profile(ctx, cfg, *seed)
	if err != nil {
		return err
	}
	if err := lumos.SaveTraces(traces, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %d rank traces (%d events, iteration %.1fms) to %s in %v\n",
		traces.NumRanks(), traces.Events(), analysis.Millis(lumos.IterationTime(traces)),
		*out, time.Since(t0).Round(time.Millisecond))
	return nil
}

func cmdReplay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "traces", "trace directory")
	baseline := fs.String("baseline", "", "also replay with a baseline: dpro")
	fs.Parse(args)

	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	tk := lumos.New()
	rep, err := tk.ReplayTraces(ctx, traces)
	if err != nil {
		return err
	}
	fmt.Printf("recorded: %.1fms\n", analysis.Millis(lumos.IterationTime(traces)))
	fmt.Printf("lumos:    %.1fms  %v\n", analysis.Millis(rep.Iteration), rep.Breakdown)
	if *baseline == "dpro" {
		dp, err := tk.ReplayDPRO(ctx, traces)
		if err != nil {
			return err
		}
		fmt.Printf("dpro:     %.1fms  %v\n", analysis.Millis(dp.Iteration), dp.Breakdown)
	}
	return nil
}

func cmdBreakdown(args []string) error {
	fs := flag.NewFlagSet("breakdown", flag.ExitOnError)
	in := fs.String("in", "traces", "trace directory")
	perRank := fs.Bool("per-rank", false, "print each rank separately")
	fs.Parse(args)

	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	if *perRank {
		for _, t := range traces.Ranks {
			fmt.Printf("rank %3d: %v\n", t.Rank, lumos.RankBreakdown(t))
		}
	}
	fmt.Printf("average: %v (iteration %.1fms)\n",
		lumos.MultiBreakdown(traces), analysis.Millis(lumos.IterationTime(traces)))
	return nil
}

func cmdSMUtil(args []string) error {
	fs := flag.NewFlagSet("smutil", flag.ExitOnError)
	in := fs.String("in", "traces", "trace directory")
	rank := fs.Int("rank", 0, "rank to analyze")
	window := fs.Duration("window", time.Millisecond, "window size")
	fs.Parse(args)

	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	if *rank < 0 || *rank >= traces.NumRanks() {
		return fmt.Errorf("rank %d out of range [0,%d)", *rank, traces.NumRanks())
	}
	u := lumos.SMUtilization(traces.Ranks[*rank], window.Nanoseconds())
	for i, v := range u {
		fmt.Printf("%d %.4f\n", i, v)
	}
	return nil
}

func cmdPredict(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	mdl, tp, pp, dp, mb, _ := deployFlags(fs)
	in := fs.String("in", "traces", "profiled trace directory (collected under the base config)")
	newDP := fs.Int("new-dp", 0, "target data parallelism (0 = unchanged)")
	newPP := fs.Int("new-pp", 0, "target pipeline parallelism (0 = unchanged)")
	newArch := fs.String("new-arch", "", "target architecture preset (empty = unchanged)")
	fs.Parse(args)

	base, err := buildConfig(*mdl, *tp, *pp, *dp, *mb)
	if err != nil {
		return err
	}
	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	target := base
	if *newPP > 0 {
		target.Map.PP = *newPP
	}
	if *newDP > 0 {
		target.Map.DP = *newDP
	}
	if *newArch != "" {
		arch, err := archByName(*newArch)
		if err != nil {
			return err
		}
		target.Arch = arch
	}
	tk := lumos.New()
	pred, err := tk.Predict(ctx, lumos.Request{Base: base, Target: target}, traces)
	if err != nil {
		return err
	}
	fmt.Printf("base:      %s %dx%dx%d — recorded %.1fms\n", base.Arch.Name,
		base.Map.TP, base.Map.PP, base.Map.DP, analysis.Millis(lumos.IterationTime(traces)))
	fmt.Printf("target:    %s %dx%dx%d — predicted %.1fms\n", target.Arch.Name,
		target.Map.TP, target.Map.PP, target.Map.DP, analysis.Millis(pred.Iteration))
	fmt.Printf("breakdown: %v\n", lumos.MultiBreakdown(pred.Trace))
	fmt.Printf("kernels:   %d from measurements, %d from the fitted model\n",
		pred.LibraryHits, pred.LibraryMisses)
	return nil
}

func cmdWhatIf(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ExitOnError)
	in := fs.String("in", "traces", "trace directory")
	class := fs.String("class", "gemm", "kernel class to scale (gemm|attention|comm|norm|elementwise|optimizer)")
	factor := fs.Float64("factor", 0.5, "duration multiplier for matched kernels")
	fusion := fs.Bool("fusion", false, "estimate elementwise/norm operator fusion instead of class scaling")
	fs.Parse(args)

	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	tk := lumos.New()
	g, err := tk.BuildGraph(ctx, traces)
	if err != nil {
		return err
	}
	if *fusion {
		rep, err := tk.WhatIfFusion(ctx, g, lumos.DefaultFusionOpts())
		if err != nil {
			return err
		}
		fmt.Printf("baseline: %.1fms\n", analysis.Millis(rep.Baseline))
		fmt.Printf("fused:    %.1fms (%d kernel runs merged, %d kernels removed, %.3fx speedup)\n",
			analysis.Millis(rep.Fused), rep.FusedGroups, rep.KernelsRemoved, rep.Speedup())
		return nil
	}
	baseRep, err := replay.Run(g, replay.DefaultOptions())
	if err != nil {
		return err
	}
	want := strings.ToLower(*class)
	match := func(t *lumos.Task) bool { return t.Class.String() == want }
	scaled, err := tk.WhatIfScale(ctx, g, match, *factor)
	if err != nil {
		return err
	}
	fmt.Printf("baseline: %.1fms\n", analysis.Millis(baseRep.Makespan))
	fmt.Printf("what-if (%s x %.2f): %.1fms (%.1f%% change)\n",
		want, *factor, analysis.Millis(scaled),
		100*(float64(scaled)-float64(baseRep.Makespan))/float64(baseRep.Makespan))
	return nil
}

// fabricByName resolves a fabric preset for the given world size via the
// shared lumos.FabricPreset resolver, so the CLI and the planning service
// accept identical names and print identical menus.
func fabricByName(name string, world int) (lumos.Fabric, error) {
	return lumos.FabricPreset(name, world)
}

// parseScheduleList validates a comma-separated -schedule list, resolving
// each spec so unknown names fail fast with the full menu of valid
// schedules (parity with the -fabric and -strategy menus).
func parseScheduleList(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		spec, err := lumos.ParseSchedule(part)
		if err != nil {
			return nil, err
		}
		out = append(out, spec.Name())
	}
	return out, nil
}

// parseFloatList parses "1,0.75,0.5" into []float64.
func parseFloatList(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseIntList parses "2,4,8" into []int.
func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	mdl, tp, pp, dp, mb, seed := deployFlags(fs)
	in := fs.String("in", "", "profiled trace directory of the base config (empty = profile now)")
	tpRange := fs.String("tp-range", "", "comma-separated TP grid (default: base TP)")
	ppRange := fs.String("pp-range", "", "comma-separated PP grid")
	dpRange := fs.String("dp-range", "", "comma-separated DP grid")
	archList := fs.String("arch", "", "comma-separated architecture variants (e.g. v1,v2,v3,v4)")
	schedList := fs.String("schedule", "", "comma-separated pipeline schedules to re-predict the base under (1f1b|gpipe|interleaved[V]|zb-h1)")
	fabricList := fs.String("fabric", "", "comma-separated fabric presets to re-price the base on (flat|nvl72|spine[N])")
	degradeList := fs.String("degrade", "", "comma-separated network bandwidth factors for degraded-network what-ifs, applied to every tier beyond the NVLink domain (e.g. 1,0.75,0.5)")
	whatIf := fs.Bool("whatif", false, "include kernel counterfactuals (2x GEMM/attention/comm, operator fusion)")
	top := fs.Int("top", 10, "print only the K best-ranked scenarios (0 = all)")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = auto)")
	cacheDir := fs.String("cache-dir", "", "disk-backed scenario cache shared across runs (empty = in-memory only)")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON of the campaign (open in Perfetto / chrome://tracing)")
	showMetrics := fs.Bool("metrics", false, "print the full metrics snapshot after the sweep")
	verbose := fs.Bool("v", false, "print the replay-engine and scenario-cache counter summary")
	fs.Parse(args)

	base, err := buildConfig(*mdl, *tp, *pp, *dp, *mb)
	if err != nil {
		return err
	}
	tps, err := parseIntList(*tpRange)
	if err != nil {
		return err
	}
	if tps == nil {
		tps = []int{base.Map.TP}
	}
	pps, err := parseIntList(*ppRange)
	if err != nil {
		return err
	}
	if pps == nil {
		pps = []int{base.Map.PP}
	}
	dps, err := parseIntList(*dpRange)
	if err != nil {
		return err
	}
	if dps == nil {
		dps = []int{base.Map.DP}
	}

	scenarios := []lumos.Scenario{lumos.BaselineScenario()}
	scenarios = append(scenarios, lumos.GridSweep(base.Arch, tps, pps, dps)...)
	if *archList != "" {
		for _, name := range strings.Split(*archList, ",") {
			arch, err := archByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			scenarios = append(scenarios, lumos.ArchScenario(arch))
		}
	}
	if *schedList != "" {
		specs, err := parseScheduleList(*schedList)
		if err != nil {
			return err
		}
		scenarios = append(scenarios, lumos.ScheduleSweep(specs)...)
	}
	if *fabricList != "" || *degradeList != "" {
		var fabrics []lumos.Fabric
		if *fabricList != "" {
			for _, name := range strings.Split(*fabricList, ",") {
				f, err := fabricByName(name, base.Map.WorldSize())
				if err != nil {
					return err
				}
				fabrics = append(fabrics, f)
			}
		}
		factors, err := parseFloatList(*degradeList)
		if err != nil {
			return err
		}
		scenarios = append(scenarios, lumos.FabricSweep(fabrics, factors)...)
	}
	if *whatIf {
		scenarios = append(scenarios,
			lumos.ClassScaleScenario(lumos.KCGEMM, 0.5),
			lumos.ClassScaleScenario(lumos.KCAttention, 0.5),
			lumos.ClassScaleScenario(lumos.KCComm, 0.5),
			lumos.FusionScenario(),
		)
	}

	tracer, tkOpts := traceOptions(*traceOut, toolkitOptions(*workers, *seed, *cacheDir))
	tk := lumos.New(tkOpts...)
	t0 := time.Now()
	var st *lumos.BaseState
	if *in != "" {
		traces, err := lumos.LoadTraces(*in)
		if err != nil {
			return err
		}
		fmt.Printf("base %s %dx%dx%d: %d profiled ranks loaded from %s\n", base.Arch.Name,
			base.Map.TP, base.Map.PP, base.Map.DP, traces.NumRanks(), *in)
		st, err = tk.PrepareTraces(ctx, base, traces)
		if err != nil {
			return sweepErr(err)
		}
	} else {
		fmt.Printf("base %s %dx%dx%d: profiling %d GPUs (seed %d)...\n", base.Arch.Name,
			base.Map.TP, base.Map.PP, base.Map.DP, base.Map.WorldSize(), *seed)
		st, err = tk.Prepare(ctx, base, *seed)
		if err != nil {
			return sweepErr(err)
		}
	}
	sweep, err := tk.EvaluateState(ctx, st, scenarios...)
	if err != nil {
		return sweepErr(err)
	}

	fmt.Printf("base iteration %.1fms; %d scenarios evaluated in %v (profile-once, shared calibration)\n\n",
		analysis.Millis(sweep.Base.Iteration), len(sweep.Results), time.Since(t0).Round(time.Millisecond))

	results := sweep.Results
	if *top > 0 {
		ranked := sweep.Top(*top)
		// Keep infeasible points visible below the cut so campaigns over
		// mixed grids explain themselves.
		infeasible := results[len(results)-countInfeasible(results):]
		results = append(append([]lumos.ScenarioResult{}, ranked...), infeasible...)
	}
	fmt.Printf("%4s  %-24s %-13s %6s %12s %9s %9s  %s\n",
		"rank", "scenario", "kind", "gpus", "pred/iter", "speedup", "Δcost", "notes")
	rank := 1
	for _, r := range results {
		if !r.Feasible() {
			fmt.Printf("%4s  %-24s %-13s %6s %12s %9s %9s  infeasible: %s\n",
				"-", clip(r.Name, 24), r.Kind, "-", "-", "-", "-", r.Err)
			continue
		}
		notes := r.Detail
		if notes == "" && r.LibraryHits+r.LibraryMisses > 0 {
			notes = fmt.Sprintf("%d kernels measured, %d modeled", r.LibraryHits, r.LibraryMisses)
		}
		fmt.Printf("%4d  %-24s %-13s %6d %10.1fms %8.2fx %+8.1f%%  %s\n",
			rank, clip(r.Name, 24), r.Kind, r.World, analysis.Millis(r.Iteration),
			r.Speedup, 100*r.CostDelta, notes)
		rank++
	}
	if best, ok := sweep.Best(); ok {
		fmt.Printf("\nbest: %s — %.1fms/iter (%.2fx vs base)\n",
			best.Name, analysis.Millis(best.Iteration), best.Speedup)
	}
	if *verbose {
		printCounterSummary(st)
	}
	printCacheStats(*cacheDir, st)
	if *showMetrics {
		printMetricsTable(tk, st)
	}
	return writeTrace(tracer, *traceOut)
}

// traceOptions attaches a tracer to the toolkit options when -trace is set.
func traceOptions(path string, opts []lumos.Option) (*lumos.Tracer, []lumos.Option) {
	if path == "" {
		return nil, opts
	}
	tr := lumos.NewTracer()
	return tr, append(opts, lumos.WithTracer(tr))
}

// writeTrace exports the recorded spans as Chrome trace-event JSON.
func writeTrace(tr *lumos.Tracer, path string) error {
	if tr == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Export(f); err != nil {
		f.Close()
		return fmt.Errorf("exporting trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\ntrace: wrote %d events to %s (open in ui.perfetto.dev or chrome://tracing)\n",
		len(tr.Events()), path)
	return nil
}

// printCounterSummary reports the replay-engine and two-level scenario
// cache counters for a campaign state — the same numbers `lumos plan`
// always prints, available on sweeps under -v.
func printCounterSummary(st *lumos.BaseState) {
	cs := st.CacheStats()
	fmt.Printf("\nreplay engine: %d programs compiled, %d compiled runs, %d interpreted runs\n",
		cs.CompiledPrograms, cs.CompiledRuns, cs.InterpretedRuns)
	fmt.Printf("scenario cache: %d memo hits (%d entries), %d disk hits, %d disk misses\n",
		cs.MemoHits, cs.MemoEntries, cs.DiskHits, cs.DiskMisses)
}

// printMetricsTable registers every toolkit and campaign-state collector
// plus the Go-runtime collectors in a fresh registry and prints the
// snapshot — the same series a lumosd /metrics scrape would expose for
// this run. Runtime registration happens here, at snapshot assembly, so
// CLI output includes the runtime gauges without a server running.
func printMetricsTable(tk *lumos.Toolkit, st *lumos.BaseState) {
	reg := lumos.NewRegistry()
	tk.RegisterMetrics(reg)
	st.RegisterMetrics(reg)
	lumos.RegisterRuntime(reg)
	snap := reg.Snapshot()
	fmt.Printf("\n%-44s %-9s %s\n", "metric", "kind", "value")
	for _, s := range snap.Samples {
		name := s.Name
		if s.Labels != "" {
			name += "{" + s.Labels + "}"
		}
		if s.Kind == lumos.MetricHistogram {
			fmt.Printf("%-44s %-9s count=%d sum=%g\n", name, s.Kind, s.Count, s.Sum)
			continue
		}
		fmt.Printf("%-44s %-9s %g\n", name, s.Kind, s.Value)
	}
}

// toolkitOptions assembles the common sweep/plan toolkit options,
// including the disk-backed scenario cache when -cache-dir is set.
func toolkitOptions(workers int, seed uint64, cacheDir string) []lumos.Option {
	opts := []lumos.Option{lumos.WithConcurrency(workers), lumos.WithSeed(seed)}
	if cacheDir != "" {
		opts = append(opts, lumos.WithDiskCache(cacheDir))
	}
	return opts
}

// printCacheStats reports two-level cache activity when a disk cache is
// configured, so warm re-runs explain where their speed came from.
func printCacheStats(cacheDir string, st *lumos.BaseState) {
	if cacheDir == "" {
		return
	}
	cs := st.CacheStats()
	fmt.Printf("\ncache: %d memo hits, %d disk hits, %d disk misses (store: %d entries, %.1f MiB, %d puts, %d discards)\n",
		cs.MemoHits, cs.DiskHits, cs.DiskMisses,
		cs.Disk.Entries, float64(cs.Disk.Bytes)/(1<<20), cs.Disk.Puts, cs.Disk.Discards)
}

func cmdPlan(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	mdl, tp, pp, dp, mb, seed := deployFlags(fs)
	in := fs.String("in", "", "profiled trace directory of the base config (empty = profile now)")
	tpRange := fs.String("tp-range", "", "comma-separated TP grid (default: base TP; other TPs are out of manipulation scope)")
	ppRange := fs.String("pp-range", "", "comma-separated PP grid (default: base PP)")
	dpRange := fs.String("dp-range", "", "comma-separated DP grid (default: base DP)")
	mbRange := fs.String("mb-range", "", "comma-separated microbatch grid (default: base -mb)")
	schedList := fs.String("schedule", "", "comma-separated pipeline schedules to search over (1f1b|gpipe|interleaved[V]|zb-h1; default: the base schedule)")
	fabricList := fs.String("fabric", "", "comma-separated fabric presets to search over (flat|nvl72|spine[N]; default: the profiled fabric)")
	degradeList := fs.String("degrade", "", "comma-separated network bandwidth factors beyond the NVLink domain (e.g. 1,0.75,0.5)")
	strategy := fs.String("strategy", "auto", "search strategy: auto|exhaustive|beam|halving|bnb")
	beam := fs.Int("beam", 8, "beam width for -strategy beam")
	eta := fs.Int("eta", 3, "promotion rate for -strategy halving")
	batch := fs.Int("batch", 0, "simulation batch size for -strategy bnb (0 = default)")
	budget := fs.Int("budget", 0, "max points promoted to full simulation (0 = no cap)")
	gpuMem := fs.Float64("gpu-mem-gib", 80, "device memory capacity in GiB for the feasibility model")
	zero := fs.Int("zero", 0, "ZeRO sharding stage for the memory model: 0 (none), 1 (optimizer), 2 (+gradients)")
	top := fs.Int("top", 10, "print only the K best dominated points (0 = all)")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = auto)")
	cacheDir := fs.String("cache-dir", "", "disk-backed scenario cache shared across runs (empty = in-memory only)")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON of the search (pipeline spans + per-round search events; open in Perfetto)")
	explainOut := fs.String("explain", "", "write the planner explain report as JSON (per simulated point: bound vs actual; per pruned subtree: head, bound, incumbent)")
	showMetrics := fs.Bool("metrics", false, "print the full metrics snapshot after the search")
	fs.Parse(args)

	base, err := buildConfig(*mdl, *tp, *pp, *dp, *mb)
	if err != nil {
		return err
	}
	var space lumos.Space
	if space.TP, err = parseIntList(*tpRange); err != nil {
		return err
	}
	if space.PP, err = parseIntList(*ppRange); err != nil {
		return err
	}
	if space.DP, err = parseIntList(*dpRange); err != nil {
		return err
	}
	if space.Microbatch, err = parseIntList(*mbRange); err != nil {
		return err
	}
	if space.Schedules, err = parseScheduleList(*schedList); err != nil {
		return err
	}
	if *fabricList != "" {
		// Size presets for the largest world the space can reach.
		maxWorld := base.Map.WorldSize()
		space.ForEach(base, func(p lumos.PlanPoint) bool {
			if w := p.World(); w > maxWorld {
				maxWorld = w
			}
			return true
		})
		for _, name := range strings.Split(*fabricList, ",") {
			f, err := fabricByName(name, maxWorld)
			if err != nil {
				return err
			}
			space.Fabrics = append(space.Fabrics, f)
		}
	}
	if *degradeList != "" {
		factors, err := parseFloatList(*degradeList)
		if err != nil {
			return err
		}
		for _, f := range factors {
			space.Degrade = append(space.Degrade, lumos.NetworkDegradeFactors(f))
		}
	}

	var opts []lumos.PlanOption
	switch strings.ToLower(*strategy) {
	case "auto", "":
	case "exhaustive":
		opts = append(opts, lumos.WithPlanStrategy(lumos.ExhaustiveStrategy()))
	case "beam":
		opts = append(opts, lumos.WithPlanStrategy(lumos.BeamStrategy(*beam)))
	case "halving":
		opts = append(opts, lumos.WithPlanStrategy(lumos.HalvingStrategy(*eta)))
	case "bnb":
		opts = append(opts, lumos.WithPlanStrategy(lumos.BranchAndBoundStrategy(*batch)))
	default:
		return fmt.Errorf("unknown strategy %q (want auto|exhaustive|beam|halving|bnb)", *strategy)
	}
	if *budget > 0 {
		opts = append(opts, lumos.WithPlanBudget(*budget))
	}
	if *zero < 0 || *zero > 2 {
		return fmt.Errorf("bad -zero %d (want 0 none, 1 optimizer states, 2 +gradients)", *zero)
	}
	if !(*gpuMem > 0) {
		return fmt.Errorf("bad -gpu-mem-gib %g (want a positive capacity)", *gpuMem)
	}
	mem := lumos.MemoryModel{
		GPUMemBytes: int64(*gpuMem * (1 << 30)),
		ZeRO:        lumos.ZeROStage(*zero),
	}
	opts = append(opts, lumos.WithMemoryModel(mem))
	var explain *lumos.PlanExplain
	if *explainOut != "" {
		explain = &lumos.PlanExplain{}
		opts = append(opts, lumos.WithPlanExplain(explain))
	}

	tracer, tkOpts := traceOptions(*traceOut, toolkitOptions(*workers, *seed, *cacheDir))
	tk := lumos.New(tkOpts...)
	t0 := time.Now()
	var st *lumos.BaseState
	if *in != "" {
		traces, err := lumos.LoadTraces(*in)
		if err != nil {
			return err
		}
		st, err = tk.PrepareTraces(ctx, base, traces)
		if err != nil {
			return sweepErr(err)
		}
	} else {
		fmt.Printf("base %s %dx%dx%d: profiling %d GPUs (seed %d)...\n", base.Arch.Name,
			base.Map.TP, base.Map.PP, base.Map.DP, base.Map.WorldSize(), *seed)
		st, err = tk.Prepare(ctx, base, *seed)
		if err != nil {
			return sweepErr(err)
		}
	}
	res, err := tk.PlanState(ctx, st, space, opts...)
	if err != nil {
		return sweepErr(err)
	}

	s := res.Stats
	fmt.Printf("base iteration %.1fms; strategy=%s space=%d feasible=%d mem-rejected=%d schedule-rejected=%d scope-rejected=%d\n",
		analysis.Millis(st.Iteration), res.Strategy, s.SpaceSize, s.Feasible, s.MemRejected, s.ScheduleRejected, s.ScopeRejected)
	if s.BoundPruned > 0 || s.DominatedPruned > 0 {
		fmt.Printf("pruned without simulating: %d by bound, %d dominated\n", s.BoundPruned, s.DominatedPruned)
	}
	fmt.Printf("simulated %d unique points (%d re-timed a shared graph) in %d rounds (%d requests, %d served by the scenario cache) in %v\n",
		s.Simulated, s.SharedStructure, s.Rounds, s.SimRequests, s.SimRequests-s.Simulated, time.Since(t0).Round(time.Millisecond))
	cs := st.CacheStats()
	fmt.Printf("replay engine: %d programs compiled, %d compiled runs, %d interpreted runs\n\n",
		cs.CompiledPrograms, cs.CompiledRuns, cs.InterpretedRuns)

	printPlanPoint := func(rank int, e lumos.PlanEvaluated) {
		speedup := 0.0
		if e.Iteration > 0 {
			speedup = float64(st.Iteration) / float64(e.Iteration)
		}
		fmt.Printf("%4d  %-28s %6d %10.1fms %8.2fx %7.1fGiB  %10.1fms\n",
			rank, clip(e.Point.Key(), 28), e.Point.World(), analysis.Millis(e.Iteration),
			speedup, e.Mem.GiB(), analysis.Millis(e.Bound))
	}
	fmt.Println("Pareto frontier (iteration time × GPU count × peak memory):")
	printPlanHeader()
	for i, e := range res.Frontier {
		printPlanPoint(i+1, e)
	}
	dominated := res.Dominated
	if *top > 0 && len(dominated) > *top {
		dominated = dominated[:*top]
	}
	if len(dominated) > 0 {
		fmt.Printf("\ndominated (%d total, ranked):\n", len(res.Dominated))
		printPlanHeader()
		for i, e := range dominated {
			printPlanPoint(len(res.Frontier)+i+1, e)
		}
	}
	if len(res.Infeasible) > 0 {
		// The retained list mixes analytic rejections with points that were
		// promoted but failed in simulation; each entry carries its reason.
		fmt.Printf("\ninfeasible (%d mem-rejected, %d schedule-rejected, %d scope-rejected; %d retained with reasons):\n",
			s.MemRejected, s.ScheduleRejected, s.ScopeRejected, len(res.Infeasible))
		for _, c := range res.Infeasible {
			fmt.Printf("  %-28s %s\n", clip(c.Point.Key(), 28), c.Infeasible)
		}
	}
	if best, ok := res.Best(); ok {
		fmt.Printf("\nbest: %s — %.1fms/iter on %d GPUs, %s\n",
			best.Point.Key(), analysis.Millis(best.Iteration), best.Point.World(), best.Mem)
	}
	printCacheStats(*cacheDir, st)
	if explain != nil {
		if err := writeExplain(explain, *explainOut); err != nil {
			return err
		}
	}
	if *showMetrics {
		printMetricsTable(tk, st)
	}
	return writeTrace(tracer, *traceOut)
}

// writeExplain dumps the planner explain report as indented JSON.
func writeExplain(e *lumos.PlanExplain, path string) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding explain report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("explain: wrote %d simulated + %d pruned-subtree records to %s\n",
		e.SimulatedCount(), len(e.Pruned), path)
	return nil
}

func printPlanHeader() {
	fmt.Printf("%4s  %-28s %6s %12s %9s %10s  %12s\n",
		"rank", "point", "gpus", "pred/iter", "speedup", "mem", "bound")
}

func countInfeasible(results []lumos.ScenarioResult) int {
	n := 0
	for _, r := range results {
		if !r.Feasible() {
			n++
		}
	}
	return n
}

// cmdTrace dispatches the trace-analysis subcommands; "top" is the only
// one today.
func cmdTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lumos trace top [-n 15] <trace.json>")
	}
	sub, rest := args[0], args[1:]
	if sub != "top" {
		return fmt.Errorf("unknown trace subcommand %q (want top)", sub)
	}
	fs := flag.NewFlagSet("trace top", flag.ExitOnError)
	topN := fs.Int("n", 15, "print the top N spans by self-time")
	fs.Parse(rest)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: lumos trace top [-n 15] <trace.json>")
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := lumos.ParseTraceEvents(data)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	return traceTop(events, *topN)
}

// spanStat aggregates one (category, name) span kind across a trace.
type spanStat struct {
	cat, name string
	selfUs    float64
	totalUs   float64
	count     int
}

// traceTop prints the top-N span kinds by self-time (duration minus the
// time spent in child spans on the same timeline), plus per-category
// rollups. Self-time is what distinguishes "where the walltime actually
// went" from "which span encloses everything".
func traceTop(events []lumos.TraceEvent, topN int) error {
	type span struct {
		e     lumos.TraceEvent
		child float64 // child span time nested inside this one, microseconds
	}
	// Complete spans ("X") grouped per timeline: children nest within
	// parents only on the same (pid, tid) track.
	byTrack := map[[2]int][]span{}
	total := 0
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		k := [2]int{e.Pid, e.Tid}
		byTrack[k] = append(byTrack[k], span{e: e})
		total++
	}
	if total == 0 {
		return fmt.Errorf("no complete spans (ph=X) in trace")
	}

	stats := map[string]*spanStat{}
	for _, spans := range byTrack {
		// Sort by start time, longest-first on ties so a parent precedes
		// the children sharing its start timestamp.
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].e.Ts != spans[j].e.Ts {
				return spans[i].e.Ts < spans[j].e.Ts
			}
			return spans[i].e.Dur > spans[j].e.Dur
		})
		// Containment sweep: a stack of currently open spans; each span's
		// duration is charged to the nearest enclosing span as child time.
		var stack []int
		for i := range spans {
			s := &spans[i]
			for len(stack) > 0 {
				top := &spans[stack[len(stack)-1]]
				if s.e.Ts < top.e.Ts+top.e.Dur {
					break
				}
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				spans[stack[len(stack)-1]].child += s.e.Dur
			}
			stack = append(stack, i)
		}
		for i := range spans {
			s := &spans[i]
			key := s.e.Cat + "/" + s.e.Name
			st := stats[key]
			if st == nil {
				st = &spanStat{cat: s.e.Cat, name: s.e.Name}
				stats[key] = st
			}
			self := s.e.Dur - s.child
			if self < 0 {
				self = 0
			}
			st.selfUs += self
			st.totalUs += s.e.Dur
			st.count++
		}
	}

	ranked := make([]*spanStat, 0, len(stats))
	var sumSelf float64
	for _, st := range stats {
		ranked = append(ranked, st)
		sumSelf += st.selfUs
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].selfUs != ranked[j].selfUs {
			return ranked[i].selfUs > ranked[j].selfUs
		}
		return ranked[i].cat+"/"+ranked[i].name < ranked[j].cat+"/"+ranked[j].name
	})
	if topN <= 0 || topN > len(ranked) {
		topN = len(ranked)
	}

	fmt.Printf("%d spans, %d kinds, %.1fms total self-time\n\n", total, len(ranked), sumSelf/1e3)
	fmt.Printf("%4s  %-36s %6s %12s %12s %7s\n", "rank", "span", "count", "self", "total", "self%")
	for i, st := range ranked[:topN] {
		fmt.Printf("%4d  %-36s %6d %10.2fms %10.2fms %6.1f%%\n",
			i+1, clip(st.cat+"/"+st.name, 36), st.count, st.selfUs/1e3, st.totalUs/1e3,
			100*st.selfUs/sumSelf)
	}

	// Category rollups over every kind, not just the printed top-N.
	cats := map[string]*spanStat{}
	for _, st := range stats {
		c := cats[st.cat]
		if c == nil {
			c = &spanStat{cat: st.cat}
			cats[st.cat] = c
		}
		c.selfUs += st.selfUs
		c.count += st.count
	}
	rolled := make([]*spanStat, 0, len(cats))
	for _, c := range cats {
		rolled = append(rolled, c)
	}
	sort.Slice(rolled, func(i, j int) bool {
		if rolled[i].selfUs != rolled[j].selfUs {
			return rolled[i].selfUs > rolled[j].selfUs
		}
		return rolled[i].cat < rolled[j].cat
	})
	fmt.Printf("\n%-20s %6s %12s %7s\n", "category", "count", "self", "self%")
	for _, c := range rolled {
		fmt.Printf("%-20s %6d %10.2fms %6.1f%%\n", c.cat, c.count, c.selfUs/1e3, 100*c.selfUs/sumSelf)
	}
	return nil
}

func sweepErr(err error) error {
	if errors.Is(err, context.Canceled) {
		return fmt.Errorf("sweep canceled")
	}
	return err
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
