// Command lumos is the toolkit CLI:
//
//	lumos tracegen  -model 15b -tp 2 -pp 2 -dp 4 -mb 8 -seed 42 -out traces/
//	    simulate one training iteration on the cluster substrate and write
//	    per-rank Kineto-style JSON traces
//	lumos replay    -in traces/ [-baseline dpro]
//	    build the execution graph and replay it, printing iteration time and
//	    the execution breakdown
//	lumos breakdown -in traces/ [-per-rank]
//	    print the exposed compute / overlapped / exposed comm / other
//	    decomposition of a collected or simulated trace
//	lumos smutil    -in traces/ -rank 0 -window 1ms
//	    print per-window SM utilization for one rank
//	lumos predict   -in traces/ -model 15b -tp 2 -pp 2 -dp 4 -mb 8 \
//	                [-new-dp N] [-new-pp N] [-new-arch v3]
//	    manipulate the profiled execution into a new configuration and
//	    predict its performance
//	lumos whatif    -in traces/ -class gemm -factor 0.5
//	    estimate the iteration time if all kernels of a class ran at the
//	    given duration factor
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lumos"
	"lumos/internal/analysis"
	"lumos/internal/execgraph"
	"lumos/internal/model"
	"lumos/internal/replay"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lumos <tracegen|replay|breakdown|smutil|predict|whatif> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "tracegen":
		err = cmdTracegen(args)
	case "replay":
		err = cmdReplay(args)
	case "breakdown":
		err = cmdBreakdown(args)
	case "smutil":
		err = cmdSMUtil(args)
	case "predict":
		err = cmdPredict(args)
	case "whatif":
		err = cmdWhatIf(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lumos %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func archByName(name string) (model.Arch, error) {
	switch strings.ToLower(name) {
	case "15b":
		return model.GPT3_15B(), nil
	case "44b":
		return model.GPT3_44B(), nil
	case "117b":
		return model.GPT3_117B(), nil
	case "175b":
		return model.GPT3_175B(), nil
	case "v1":
		return model.GPT3_V1(), nil
	case "v2":
		return model.GPT3_V2(), nil
	case "v3":
		return model.GPT3_V3(), nil
	case "v4":
		return model.GPT3_V4(), nil
	}
	return model.Arch{}, fmt.Errorf("unknown model %q (want 15b|44b|117b|175b|v1..v4)", name)
}

// deployFlags registers the deployment flag set shared by tracegen/predict.
func deployFlags(fs *flag.FlagSet) (mdl *string, tp, pp, dp, mb *int, seed *uint64) {
	mdl = fs.String("model", "15b", "architecture preset")
	tp = fs.Int("tp", 2, "tensor parallelism")
	pp = fs.Int("pp", 2, "pipeline parallelism")
	dp = fs.Int("dp", 4, "data parallelism")
	mb = fs.Int("mb", 8, "microbatches per rank")
	seed = fs.Uint64("seed", 42, "simulation seed")
	return
}

func buildConfig(mdl string, tp, pp, dp, mb int) (lumos.Config, error) {
	arch, err := archByName(mdl)
	if err != nil {
		return lumos.Config{}, err
	}
	cfg, err := lumos.DeploymentConfig(arch, tp, pp, dp)
	if err != nil {
		return lumos.Config{}, err
	}
	cfg.Microbatches = mb
	return cfg, nil
}

func cmdTracegen(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ExitOnError)
	mdl, tp, pp, dp, mb, seed := deployFlags(fs)
	out := fs.String("out", "traces", "output directory for rank_<N>.json")
	fs.Parse(args)

	cfg, err := buildConfig(*mdl, *tp, *pp, *dp, *mb)
	if err != nil {
		return err
	}
	tk := lumos.New(lumos.Options{})
	t0 := time.Now()
	traces, err := tk.Profile(cfg, *seed)
	if err != nil {
		return err
	}
	if err := lumos.SaveTraces(traces, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %d rank traces (%d events, iteration %.1fms) to %s in %v\n",
		traces.NumRanks(), traces.Events(), analysis.Millis(lumos.IterationTime(traces)),
		*out, time.Since(t0).Round(time.Millisecond))
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "traces", "trace directory")
	baseline := fs.String("baseline", "", "also replay with a baseline: dpro")
	fs.Parse(args)

	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	tk := lumos.New(lumos.Options{})
	rep, err := tk.ReplayTraces(traces)
	if err != nil {
		return err
	}
	fmt.Printf("recorded: %.1fms\n", analysis.Millis(lumos.IterationTime(traces)))
	fmt.Printf("lumos:    %.1fms  %v\n", analysis.Millis(rep.Iteration), rep.Breakdown)
	if *baseline == "dpro" {
		dp, err := tk.ReplayDPRO(traces)
		if err != nil {
			return err
		}
		fmt.Printf("dpro:     %.1fms  %v\n", analysis.Millis(dp.Iteration), dp.Breakdown)
	}
	return nil
}

func cmdBreakdown(args []string) error {
	fs := flag.NewFlagSet("breakdown", flag.ExitOnError)
	in := fs.String("in", "traces", "trace directory")
	perRank := fs.Bool("per-rank", false, "print each rank separately")
	fs.Parse(args)

	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	if *perRank {
		for _, t := range traces.Ranks {
			fmt.Printf("rank %3d: %v\n", t.Rank, lumos.RankBreakdown(t))
		}
	}
	fmt.Printf("average: %v (iteration %.1fms)\n",
		lumos.MultiBreakdown(traces), analysis.Millis(lumos.IterationTime(traces)))
	return nil
}

func cmdSMUtil(args []string) error {
	fs := flag.NewFlagSet("smutil", flag.ExitOnError)
	in := fs.String("in", "traces", "trace directory")
	rank := fs.Int("rank", 0, "rank to analyze")
	window := fs.Duration("window", time.Millisecond, "window size")
	fs.Parse(args)

	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	if *rank < 0 || *rank >= traces.NumRanks() {
		return fmt.Errorf("rank %d out of range [0,%d)", *rank, traces.NumRanks())
	}
	u := lumos.SMUtilization(traces.Ranks[*rank], window.Nanoseconds())
	for i, v := range u {
		fmt.Printf("%d %.4f\n", i, v)
	}
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	mdl, tp, pp, dp, mb, _ := deployFlags(fs)
	in := fs.String("in", "traces", "profiled trace directory (collected under the base config)")
	newDP := fs.Int("new-dp", 0, "target data parallelism (0 = unchanged)")
	newPP := fs.Int("new-pp", 0, "target pipeline parallelism (0 = unchanged)")
	newArch := fs.String("new-arch", "", "target architecture preset (empty = unchanged)")
	fs.Parse(args)

	base, err := buildConfig(*mdl, *tp, *pp, *dp, *mb)
	if err != nil {
		return err
	}
	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	target := base
	if *newPP > 0 {
		target.Map.PP = *newPP
	}
	if *newDP > 0 {
		target.Map.DP = *newDP
	}
	if *newArch != "" {
		arch, err := archByName(*newArch)
		if err != nil {
			return err
		}
		target.Arch = arch
	}
	tk := lumos.New(lumos.Options{})
	pred, err := tk.Predict(lumos.Request{Base: base, Target: target}, traces)
	if err != nil {
		return err
	}
	fmt.Printf("base:      %s %dx%dx%d — recorded %.1fms\n", base.Arch.Name,
		base.Map.TP, base.Map.PP, base.Map.DP, analysis.Millis(lumos.IterationTime(traces)))
	fmt.Printf("target:    %s %dx%dx%d — predicted %.1fms\n", target.Arch.Name,
		target.Map.TP, target.Map.PP, target.Map.DP, analysis.Millis(pred.Iteration))
	fmt.Printf("breakdown: %v\n", lumos.MultiBreakdown(pred.Trace))
	fmt.Printf("kernels:   %d from measurements, %d from the fitted model\n",
		pred.LibraryHits, pred.LibraryMisses)
	return nil
}

func cmdWhatIf(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ExitOnError)
	in := fs.String("in", "traces", "trace directory")
	class := fs.String("class", "gemm", "kernel class to scale (gemm|attention|comm|norm|elementwise|optimizer)")
	factor := fs.Float64("factor", 0.5, "duration multiplier for matched kernels")
	fusion := fs.Bool("fusion", false, "estimate elementwise/norm operator fusion instead of class scaling")
	fs.Parse(args)

	traces, err := lumos.LoadTraces(*in)
	if err != nil {
		return err
	}
	tk := lumos.New(lumos.Options{})
	g, err := tk.BuildGraph(traces)
	if err != nil {
		return err
	}
	if *fusion {
		rep, err := lumos.WhatIfFusion(g)
		if err != nil {
			return err
		}
		fmt.Printf("baseline: %.1fms\n", analysis.Millis(rep.Baseline))
		fmt.Printf("fused:    %.1fms (%d kernel runs merged, %d kernels removed, %.3fx speedup)\n",
			analysis.Millis(rep.Fused), rep.FusedGroups, rep.KernelsRemoved, rep.Speedup())
		return nil
	}
	baseRep, err := replay.Run(g, replay.DefaultOptions())
	if err != nil {
		return err
	}
	want := strings.ToLower(*class)
	match := func(t *execgraph.Task) bool { return t.Class.String() == want }
	scaled, err := lumos.WhatIfScale(g, match, *factor)
	if err != nil {
		return err
	}
	fmt.Printf("baseline: %.1fms\n", analysis.Millis(baseRep.Makespan))
	fmt.Printf("what-if (%s x %.2f): %.1fms (%.1f%% change)\n",
		want, *factor, analysis.Millis(scaled),
		100*(float64(scaled)-float64(baseRep.Makespan))/float64(baseRep.Makespan))
	return nil
}
