// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result line, so CI and the
// Makefile's bench target can archive machine-readable numbers (e.g.
// BENCH_sweep.json) without external tooling.
//
// The -alloc-guard flag records the compiled replay engine's allocation
// budget (the TestReplayAllocBudget constant, passed by the Makefile) as a
// synthetic AllocGuardBudget entry, so the archive pins the whole
// zero-allocation contract, not just per-benchmark allocs/op.
//
// The diff subcommand compares two such archives:
//
//	benchjson diff [-threshold pct] old.json new.json
//
// It prints Δns/op and Δallocs/op per benchmark label and exits non-zero
// when any benchmark regressed by more than the threshold (default 10%) —
// or when the AllocGuardBudget entry grew at all: raising the alloc
// budget (e.g. to absorb observability overhead on the hot path) is a
// contract change that must land deliberately, never ride along.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Fabric is the topology label for fabric-parameterized benchmarks
	// (sub-benchmark names containing "fabric=<preset>"), so entries in
	// BENCH_sweep.json are comparable across topologies.
	Fabric string `json:"fabric,omitempty"`
	// Strategy is the search-strategy label for planner benchmarks
	// (sub-benchmark names containing "strategy=<name>"), so entries are
	// comparable across exhaustive/beam/halving/bnb runs.
	Strategy string `json:"strategy,omitempty"`
	// Space is the search-space-size label for planner benchmarks
	// (sub-benchmark names containing "space=<points>"), so large-space
	// branch-and-bound entries carry the space they searched.
	Space string `json:"space,omitempty"`
	// Schedule is the pipeline-schedule label for schedule-campaign
	// benchmarks (sub-benchmark names containing "schedule=<name>"), so
	// entries are comparable across 1f1b/gpipe/interleaved/zb-h1 runs.
	Schedule string `json:"schedule,omitempty"`
	// Cache is the cache-temperature label for disk-cache benchmarks
	// (sub-benchmark names containing "cache=<cold|warm>"), so the
	// warm-start speedup is directly readable from BENCH_sweep.json.
	Cache string `json:"cache,omitempty"`
	// Engine is the replay-engine label for engine-comparison benchmarks
	// (sub-benchmark names containing "engine=<compiled|interpreted>"), so
	// the compiled engine's speedup is directly readable from
	// BENCH_sweep.json.
	Engine     string             `json:"engine,omitempty"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// fabricRe extracts the fabric label from a sub-benchmark name like
// "BenchmarkSweep_FabricCampaign/fabric=nvl72-8" (the trailing -N is the
// GOMAXPROCS suffix go test appends); strategyRe does the same for planner
// benchmarks like "BenchmarkPlan_BeamVsExhaustive/strategy=beam4-8". The
// labels may be followed by further /label=value segments (e.g.
// "strategy=bnb/space=131072-8"), so each match ends at a segment boundary
// or end of name, not only at end of name.
var (
	fabricRe   = regexp.MustCompile(`fabric=([^/]+?)(?:-\d+)?(?:/|$)`)
	strategyRe = regexp.MustCompile(`strategy=([^/]+?)(?:-\d+)?(?:/|$)`)
	spaceRe    = regexp.MustCompile(`space=([^/]+?)(?:-\d+)?(?:/|$)`)
	scheduleRe = regexp.MustCompile(`schedule=([^/]+?)(?:-\d+)?(?:/|$)`)
	cacheRe    = regexp.MustCompile(`cache=([^/]+?)(?:-\d+)?(?:/|$)`)
	engineRe   = regexp.MustCompile(`engine=([^/]+?)(?:-\d+)?(?:/|$)`)
)

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	if m := fabricRe.FindStringSubmatch(fields[0]); m != nil {
		r.Fabric = m[1]
	}
	if m := strategyRe.FindStringSubmatch(fields[0]); m != nil {
		r.Strategy = m[1]
	}
	if m := spaceRe.FindStringSubmatch(fields[0]); m != nil {
		r.Space = m[1]
	}
	if m := scheduleRe.FindStringSubmatch(fields[0]); m != nil {
		r.Schedule = m[1]
	}
	if m := cacheRe.FindStringSubmatch(fields[0]); m != nil {
		r.Cache = m[1]
	}
	if m := engineRe.FindStringSubmatch(fields[0]); m != nil {
		r.Engine = m[1]
	}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// allocGuardName keys the synthetic archive entry recording the compiled
// engine's allocation budget (allocs/op carries the budget value).
const allocGuardName = "AllocGuardBudget"

// canonicalName strips the GOMAXPROCS suffix go test appends, so archives
// recorded on machines with different core counts remain comparable.
var procSuffixRe = regexp.MustCompile(`-\d+$`)

func canonicalName(name string) string { return procSuffixRe.ReplaceAllString(name, "") }

// loadArchive reads one benchjson-produced JSON archive into a map keyed
// by canonical benchmark name, last entry winning for duplicates.
func loadArchive(path string) (map[string]result, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]result, len(rs))
	var order []string
	for _, r := range rs {
		key := canonicalName(r.Name)
		if _, seen := m[key]; !seen {
			order = append(order, key)
		}
		m[key] = r
	}
	return m, order, nil
}

// pctDelta is the relative change new vs old in percent; ok=false when the
// old value is zero (no baseline to compare against).
func pctDelta(oldV, newV float64) (float64, bool) {
	if oldV == 0 {
		return 0, false
	}
	return (newV - oldV) / oldV * 100, true
}

// diffMain implements `benchjson diff [-threshold pct] old.json new.json`.
func diffMain(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 10, "regression threshold in percent; exceeding it on ns/op or allocs/op fails the diff")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson diff [-threshold pct] old.json new.json")
		os.Exit(2)
	}
	oldM, _, err := loadArchive(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	newM, newOrder, err := loadArchive(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	regressions := 0
	fmt.Printf("%-72s %14s %14s\n", "benchmark", "Δns/op", "Δallocs/op")
	for _, key := range newOrder {
		nw := newM[key]
		od, ok := oldM[key]
		if !ok {
			fmt.Printf("%-72s %14s %14s\n", key, "new", "new")
			continue
		}
		cell := func(oldV, newV float64) string {
			d, ok := pctDelta(oldV, newV)
			if !ok {
				return "n/a"
			}
			return fmt.Sprintf("%+.1f%%", d)
		}
		flag := ""
		if d, ok := pctDelta(od.NsPerOp, nw.NsPerOp); ok && d > *threshold {
			flag = "  REGRESSION"
		}
		if d, ok := pctDelta(od.AllocsOp, nw.AllocsOp); ok && d > *threshold {
			flag = "  REGRESSION"
		}
		// The alloc-guard budget is a contract, not a measurement: any
		// increase fails the diff regardless of threshold.
		if key == allocGuardName && nw.AllocsOp > od.AllocsOp {
			flag = "  REGRESSION"
		}
		if flag != "" {
			regressions++
		}
		fmt.Printf("%-72s %14s %14s%s\n", key, cell(od.NsPerOp, nw.NsPerOp), cell(od.AllocsOp, nw.AllocsOp), flag)
	}
	for key := range oldM {
		if _, ok := newM[key]; !ok {
			fmt.Printf("%-72s %14s %14s\n", key, "gone", "gone")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%\n", regressions, *threshold)
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		diffMain(os.Args[2:])
		return
	}
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	allocGuard := fs.Float64("alloc-guard", 0,
		"record the compiled-engine allocation budget (allocs/op) as a synthetic AllocGuardBudget entry (0 = omit)")
	_ = fs.Parse(os.Args[1:])
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the bench stays readable when piped.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *allocGuard > 0 {
		results = append(results, result{Name: allocGuardName, Iterations: 1, AllocsOp: *allocGuard})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
