package main

import "testing"

func TestParseLineLabels(t *testing.T) {
	cases := []struct {
		line     string
		strategy string
		space    string
		fabric   string
		schedule string
		cache    string
	}{
		{
			line:     "BenchmarkPlan_BeamVsExhaustive/strategy=beam4-8 	      20	  52047619 ns/op	       374.2 best-ms",
			strategy: "beam4",
		},
		{
			// Composite label: the strategy segment is followed by a space
			// segment, so neither regex may demand end-of-name.
			line:     "BenchmarkPlan_BranchAndBound/strategy=bnb/space=131072-8 	       1	1167756151 ns/op	        65.00 simulated-points",
			strategy: "bnb",
			space:    "131072",
		},
		{
			line:   "BenchmarkSweep_FabricCampaign/fabric=nvl72-8 	      20	  1000000 ns/op",
			fabric: "nvl72",
		},
		{
			line:     "BenchmarkSweep_ScheduleCampaign/schedule=zb-h1-8 	      20	  1000000 ns/op",
			schedule: "zb-h1",
		},
		{
			line:  "BenchmarkSweep_DiskCacheWarmStart/cache=warm-8 	      20	  1000000 ns/op",
			cache: "warm",
		},
	}
	for _, c := range cases {
		r, ok := parseLine(c.line)
		if !ok {
			t.Errorf("parseLine rejected %q", c.line)
			continue
		}
		if r.Strategy != c.strategy {
			t.Errorf("%s: strategy = %q, want %q", r.Name, r.Strategy, c.strategy)
		}
		if r.Space != c.space {
			t.Errorf("%s: space = %q, want %q", r.Name, r.Space, c.space)
		}
		if r.Fabric != c.fabric {
			t.Errorf("%s: fabric = %q, want %q", r.Name, r.Fabric, c.fabric)
		}
		if r.Schedule != c.schedule {
			t.Errorf("%s: schedule = %q, want %q", r.Name, r.Schedule, c.schedule)
		}
		if r.Cache != c.cache {
			t.Errorf("%s: cache = %q, want %q", r.Name, r.Cache, c.cache)
		}
	}
}
