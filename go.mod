module lumos

go 1.24
