package lumos

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// scheduleBase is the fig7-shaped GPT-3 15B 2x2x2 deployment the schedule
// acceptance tests run on.
func scheduleBase(t *testing.T, arch Arch) Config {
	t.Helper()
	cfg, err := DeploymentConfig(arch, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Microbatches = 8
	return cfg
}

// TestSchedule1F1BPredictionEquivalence is the PR's equivalence gate: with
// Schedule: OneFOneB, predictions are bit-identical to the plain deploy
// prediction of the same target on the fig7 (GPT-3 15B) and fig8 (GPT-3
// V3) configurations — the subsystem refactor must not move a single
// nanosecond on the paper's default schedule.
func TestSchedule1F1BPredictionEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, arch := range []Arch{GPT3_15B(), GPT3_V3()} {
		base := scheduleBase(t, arch)
		tk := New(WithSeed(42), WithScenarioCache(false))
		sweep, err := tk.Evaluate(ctx, base,
			ScheduleScenario("1f1b"),
			DeploymentScenario(arch, 2, 2, 2),
		)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]ScenarioResult{}
		for _, r := range sweep.Results {
			byName[r.Name] = r
		}
		sched := byName["schedule=1f1b"]
		deploy := byName[arch.Name+" 2x2x2"]
		if !sched.Feasible() || !deploy.Feasible() {
			t.Fatalf("%s: infeasible results: %+v / %+v", arch.Name, sched, deploy)
		}
		if sched.Iteration != deploy.Iteration {
			t.Fatalf("%s: explicit 1F1B prediction %v != plain deploy prediction %v",
				arch.Name, sched.Iteration, deploy.Iteration)
		}
		if !reflect.DeepEqual(sched.Breakdown, deploy.Breakdown) {
			t.Fatalf("%s: breakdowns diverge: %+v vs %+v", arch.Name, sched.Breakdown, deploy.Breakdown)
		}
	}
}

// TestScheduleSweepDeterministicRanked is the schedule analogue of the
// fabric determinism gate: a campaign spanning every schedule (plus an
// unknown spec) returns identical ranked results serially and on an 8-wide
// worker pool, interleaving strictly beats 1F1B, and the unknown spec
// surfaces as an infeasible point carrying the schedule menu.
func TestScheduleSweepDeterministicRanked(t *testing.T) {
	ctx := context.Background()
	base := scheduleBase(t, GPT3_15B())

	scenarios := func() []Scenario {
		s := ScheduleSweep([]string{"1f1b", "gpipe", "interleaved2", "zb-h1", "zb-v"})
		s = append(s, BaselineScenario())
		s = append(s, GridSweepSchedules(GPT3_15B(), []int{2}, []int{2}, []int{1}, []string{"", "interleaved2"})...)
		return s
	}

	run := func(workers int) *SweepResult {
		t.Helper()
		tk := New(WithConcurrency(workers), WithSeed(42))
		sweep, err := tk.Evaluate(ctx, base, scenarios()...)
		if err != nil {
			t.Fatal(err)
		}
		return sweep
	}
	serial := run(1)
	wide := run(8)
	if !reflect.DeepEqual(serial.Results, wide.Results) {
		t.Fatal("schedule sweep results depend on worker count")
	}

	byName := map[string]ScenarioResult{}
	for _, r := range serial.Results {
		byName[r.Name] = r
	}
	fb := byName["schedule=1f1b"]
	il := byName["schedule=interleaved2"]
	zb := byName["schedule=zb-h1"]
	if !fb.Feasible() || !il.Feasible() || !zb.Feasible() {
		t.Fatalf("schedule points must be feasible: %+v %+v %+v", fb, il, zb)
	}
	if il.Iteration >= fb.Iteration {
		t.Fatalf("interleaved2 %v not faster than 1F1B %v", il.Iteration, fb.Iteration)
	}
	bad := byName["schedule=zb-v"]
	if bad.Feasible() || !strings.Contains(bad.Err, "interleaved") {
		t.Fatalf("unknown schedule must be infeasible with the menu: %+v", bad)
	}
}

// TestPlanScheduleSpaceDeterministic covers the planner's schedule axis:
// a space spanning schedules produces deterministic ranked results at any
// worker count, schedule-specific keys, and ZB-H1 memory estimates equal
// to 1F1B's.
func TestPlanScheduleSpaceDeterministic(t *testing.T) {
	ctx := context.Background()
	base := scheduleBase(t, GPT3_15B())
	space := Space{
		PP:        []int{2},
		DP:        []int{1, 2},
		Schedules: []string{"", "interleaved2", "zb-h1"},
	}
	mem := MemoryModel{ZeRO: ZeROOptimizer}

	run := func(workers int) *PlanResult {
		t.Helper()
		tk := New(WithConcurrency(workers), WithSeed(42))
		res, err := tk.Plan(ctx, base, space,
			WithPlanStrategy(ExhaustiveStrategy()), WithMemoryModel(mem))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)
	if !reflect.DeepEqual(serial.Frontier, wide.Frontier) || !reflect.DeepEqual(serial.Dominated, wide.Dominated) {
		t.Fatal("plan results depend on worker count")
	}
	if serial.Stats.SpaceSize != 6 {
		t.Fatalf("space size %d, want 6", serial.Stats.SpaceSize)
	}

	mems := map[string]MemoryEstimate{}
	iters := map[string]int64{}
	for _, e := range append(append([]PlanEvaluated{}, serial.Frontier...), serial.Dominated...) {
		mems[e.Point.Key()] = e.Mem
		iters[e.Point.Key()] = int64(e.Iteration)
	}
	for _, dp := range []string{"2x2x1", "2x2x2"} {
		fbKey, zbKey, ilKey := dp+"/mb8", dp+"/mb8/zb-h1", dp+"/mb8/interleaved2"
		if _, ok := mems[fbKey]; !ok {
			t.Fatalf("missing simulated point %s (have %v)", fbKey, mems)
		}
		if mems[zbKey] != mems[fbKey] {
			t.Fatalf("%s: ZB-H1 memory %+v != 1F1B %+v", dp, mems[zbKey], mems[fbKey])
		}
		if iters[ilKey] >= iters[fbKey] {
			t.Fatalf("%s: interleaved2 %d not faster than 1F1B %d", dp, iters[ilKey], iters[fbKey])
		}
	}
}
