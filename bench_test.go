// Benchmarks: one per table/figure of the paper's evaluation, plus the
// ablations from DESIGN.md §5. Each benchmark regenerates its experiment's
// pipeline at a size that fits a laptop-class machine and reports the
// domain metrics (replay error, prediction error) via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a miniature reproduction run.
// The full-size sweeps live in cmd/experiments.
package lumos

import (
	"context"
	"fmt"
	"testing"

	"lumos/internal/analysis"
	"lumos/internal/cluster"
	"lumos/internal/dpro"
	"lumos/internal/execgraph"
	"lumos/internal/manip"
	"lumos/internal/metrics"
	"lumos/internal/model"
	"lumos/internal/parallel"
	"lumos/internal/replay"
	"lumos/internal/topology"
	"lumos/internal/trace"
)

// benchConfig builds a deployment for benchmarks.
func benchConfig(b *testing.B, arch model.Arch, tp, pp, dp, mb int) parallel.Config {
	b.Helper()
	m, err := topology.NewMapping(tp, pp, dp)
	if err != nil {
		b.Fatal(err)
	}
	cfg := parallel.DefaultConfig(arch, m)
	cfg.Microbatches = mb
	return cfg
}

func benchSim(b *testing.B, cfg parallel.Config, seed uint64) *trace.Multi {
	b.Helper()
	out, err := cluster.Run(cfg, cluster.DefaultSimConfig(cfg.Map.WorldSize(), seed))
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkTable1_ModelPresets prices every Table 1 preset's per-layer op
// generation (the workload-model hot path).
func BenchmarkTable1_ModelPresets(b *testing.B) {
	archs := model.Table1()
	sc := model.ShapeConfig{TP: 8, MicrobatchSize: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, a := range archs {
			for l := 0; l < a.Layers; l++ {
				_ = a.LayerForward(sc, l)
				_ = a.LayerBackward(sc, l)
			}
		}
	}
}

// replayErrorBench runs the Figure 5 pipeline (profile → graph → Lumos and
// dPRO replays → compare with a fresh iteration) for one configuration and
// reports both errors.
func replayErrorBench(b *testing.B, arch model.Arch, tp, pp, dp, mb int) {
	cfg := benchConfig(b, arch, tp, pp, dp, mb)
	var lumosErr, dproErr float64
	for i := 0; i < b.N; i++ {
		profiled := benchSim(b, cfg, 42+uint64(i))
		actual := benchSim(b, cfg, 1042+uint64(i))
		actualIter := actual.Duration()

		g, err := execgraph.Build(profiled, execgraph.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		lres, err := replay.Run(g, replay.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		dg, err := dpro.Build(profiled)
		if err != nil {
			b.Fatal(err)
		}
		dres, err := dpro.Replay(dg)
		if err != nil {
			b.Fatal(err)
		}
		lumosErr = metrics.RelErr(lres.Makespan, actualIter)
		dproErr = metrics.RelErr(dres.Makespan, actualIter)
	}
	b.ReportMetric(lumosErr, "lumos-err-%")
	b.ReportMetric(dproErr, "dpro-err-%")
}

// BenchmarkFig5_* regenerate the replay-accuracy comparison per model
// (scaled-down parallelism; the full 512-GPU grid runs via cmd/experiments).
func BenchmarkFig5_Replay15B(b *testing.B)  { replayErrorBench(b, model.GPT3_15B(), 2, 2, 2, 4) }
func BenchmarkFig5_Replay44B(b *testing.B)  { replayErrorBench(b, model.GPT3_44B(), 2, 2, 2, 4) }
func BenchmarkFig5_Replay117B(b *testing.B) { replayErrorBench(b, model.GPT3_117B(), 2, 2, 2, 4) }
func BenchmarkFig5_Replay175B(b *testing.B) { replayErrorBench(b, model.GPT3_175B(), 2, 2, 2, 4) }

// BenchmarkFig1_Breakdown175B regenerates the Figure 1 comparison (dPRO's
// breakdown distortion) on a reduced 175B deployment.
func BenchmarkFig1_Breakdown175B(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_175B(), 2, 2, 2, 4)
	var overlapRatio float64
	for i := 0; i < b.N; i++ {
		profiled := benchSim(b, cfg, 7)
		actualBD := analysis.MultiBreakdown(profiled)
		dg, err := dpro.Build(profiled)
		if err != nil {
			b.Fatal(err)
		}
		dres, err := dpro.Replay(dg)
		if err != nil {
			b.Fatal(err)
		}
		dbd := analysis.MultiBreakdown(replay.ToTrace(dg, dres))
		overlapRatio = float64(dbd.Overlapped) / float64(actualBD.Overlapped)
	}
	b.ReportMetric(overlapRatio, "dpro-overlap-ratio")
}

// BenchmarkFig6_SMUtilization regenerates the SM-utilization comparison.
func BenchmarkFig6_SMUtilization(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 2, 2, 2, 4)
	profiled := benchSim(b, cfg, 11)
	g, err := execgraph.Build(profiled, execgraph.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	res, err := replay.Run(g, replay.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	sim := replay.ToTrace(g, res)
	b.ResetTimer()
	var diff float64
	for i := 0; i < b.N; i++ {
		aU := analysis.EffectiveSMUtilization(profiled, 0, trace.Millisecond)
		lU := analysis.EffectiveSMUtilization(sim, 0, trace.Millisecond)
		n := len(aU)
		if len(lU) < n {
			n = len(lU)
		}
		var s float64
		for j := 0; j < n; j++ {
			d := aU[j] - lU[j]
			if d < 0 {
				d = -d
			}
			s += d
		}
		diff = s / float64(n)
	}
	b.ReportMetric(diff, "mean-abs-util-err")
}

// predictBench runs a Figure 7/8-style manipulation prediction and reports
// its error vs a ground-truth run of the target.
func predictBench(b *testing.B, req manip.Request, seed uint64) {
	world := req.Target.Map.WorldSize()
	if bw := req.Base.Map.WorldSize(); bw > world {
		world = bw
	}
	topo := topology.H100Cluster(world)
	var predErr float64
	for i := 0; i < b.N; i++ {
		profiled := benchSim(b, req.Base, 21)
		pred, err := manip.Predict(req, profiled, topo)
		if err != nil {
			b.Fatal(err)
		}
		actual := benchSim(b, req.Target, seed+uint64(i))
		predErr = metrics.RelErr(pred.Iteration, actual.Duration())
	}
	b.ReportMetric(predErr, "pred-err-%")
}

func fig7Base(b *testing.B) parallel.Config {
	return benchConfig(b, model.GPT3_15B(), 2, 2, 2, 8)
}

// BenchmarkFig7a_ScaleDP regenerates the DP scale-out prediction.
func BenchmarkFig7a_ScaleDP(b *testing.B) {
	predictBench(b, manip.ScaleDP(fig7Base(b), 4), 3100)
}

// BenchmarkFig7b_ScalePP regenerates the PP scale-out prediction.
func BenchmarkFig7b_ScalePP(b *testing.B) {
	predictBench(b, manip.ScalePP(fig7Base(b), 4), 3200)
}

// BenchmarkFig7c_ScaleDPPP regenerates the simultaneous scaling prediction.
func BenchmarkFig7c_ScaleDPPP(b *testing.B) {
	predictBench(b, manip.Scale3D(fig7Base(b), 4, 4), 3300)
}

// BenchmarkFig8_ArchVariants regenerates the architecture-change prediction
// for each Table 2 variant.
func BenchmarkFig8_ArchVariants(b *testing.B) {
	base := fig7Base(b)
	for _, v := range []model.Arch{model.GPT3_V1(), model.GPT3_V3()} {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			target := base
			target.Arch = v
			predictBench(b, manip.ChangeArch(base, target), 3400)
		})
	}
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// BenchmarkAblation_NoInterStreamDeps measures how much replay error the
// inter-stream dependencies remove — the paper's core claim.
func BenchmarkAblation_NoInterStreamDeps(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 4, 1, 2, 4)
	var withErr, withoutErr float64
	for i := 0; i < b.N; i++ {
		profiled := benchSim(b, cfg, 31)
		actual := benchSim(b, cfg, 1031+uint64(i))
		ai := actual.Duration()
		full := execgraph.DefaultOptions()
		none := execgraph.DefaultOptions()
		none.InterStream = execgraph.InterStreamNone

		gf, err := execgraph.Build(profiled, full)
		if err != nil {
			b.Fatal(err)
		}
		rf, err := replay.Run(gf, replay.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		gn, err := execgraph.Build(profiled, none)
		if err != nil {
			b.Fatal(err)
		}
		uncoupled := replay.DefaultOptions()
		uncoupled.CoupleCollectives = false
		rn, err := replay.Run(gn, uncoupled)
		if err != nil {
			b.Fatal(err)
		}
		withErr = metrics.RelErr(rf.Makespan, ai)
		withoutErr = metrics.RelErr(rn.Makespan, ai)
	}
	b.ReportMetric(withErr, "with-deps-err-%")
	b.ReportMetric(withoutErr, "without-deps-err-%")
}

// BenchmarkAblation_ContentionModel quantifies the ground-truth contention
// penalty's contribution to replay error.
func BenchmarkAblation_ContentionModel(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 2, 2, 2, 4)
	var errOn, errOff float64
	for i := 0; i < b.N; i++ {
		for _, contention := range []bool{true, false} {
			sp := cluster.DefaultSimConfig(cfg.Map.WorldSize(), 41)
			sa := cluster.DefaultSimConfig(cfg.Map.WorldSize(), 1041+uint64(i))
			if !contention {
				sp.OverlapComputeSlowdown, sp.OverlapCommSlowdown = 1, 1
				sa.OverlapComputeSlowdown, sa.OverlapCommSlowdown = 1, 1
			}
			profiled, err := cluster.Run(cfg, sp)
			if err != nil {
				b.Fatal(err)
			}
			actual, err := cluster.Run(cfg, sa)
			if err != nil {
				b.Fatal(err)
			}
			g, err := execgraph.Build(profiled, execgraph.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			res, err := replay.Run(g, replay.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			e := metrics.RelErr(res.Makespan, actual.Duration())
			if contention {
				errOn = e
			} else {
				errOff = e
			}
		}
	}
	b.ReportMetric(errOn, "contention-on-err-%")
	b.ReportMetric(errOff, "contention-off-err-%")
}

// BenchmarkAblation_SchedulePolicy compares 1F1B and GPipe ground truth.
func BenchmarkAblation_SchedulePolicy(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		iter := map[parallel.SchedulePolicy]trace.Dur{}
		for _, pol := range []parallel.SchedulePolicy{parallel.OneFOneB, parallel.GPipe} {
			cfg := benchConfig(b, model.GPT3_15B(), 2, 4, 1, 8)
			cfg.Schedule = pol
			iter[pol] = benchSim(b, cfg, 51).Duration()
		}
		r = float64(iter[parallel.GPipe]) / float64(iter[parallel.OneFOneB])
	}
	b.ReportMetric(r, "gpipe/1f1b")
}

// --- Component micro-benchmarks -------------------------------------------

// BenchmarkGroundTruthSimulator measures the cluster substrate's throughput.
func BenchmarkGroundTruthSimulator(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 2, 2, 2, 4)
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		out := benchSim(b, cfg, uint64(i))
		events = out.Events()
	}
	b.ReportMetric(float64(events), "events")
}

// BenchmarkGraphBuild measures execution-graph construction.
func BenchmarkGraphBuild(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 2, 2, 2, 4)
	profiled := benchSim(b, cfg, 3)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := execgraph.Build(profiled, execgraph.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Tasks) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkReplaySimulator measures Algorithm 1's throughput.
func BenchmarkReplaySimulator(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 2, 2, 2, 4)
	profiled := benchSim(b, cfg, 5)
	g, err := execgraph.Build(profiled, execgraph.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Run(g, replay.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.Tasks)), "tasks")
}

// BenchmarkBreakdownAnalysis measures the interval-algebra analysis.
func BenchmarkBreakdownAnalysis(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 2, 2, 2, 4)
	profiled := benchSim(b, cfg, 9)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd := analysis.MultiBreakdown(profiled)
		if bd.Total == 0 {
			b.Fatal("no breakdown")
		}
	}
}

var benchSink string

// BenchmarkTable2_VariantSweep exercises preset construction and parameter
// accounting for the Table 2 variants.
func BenchmarkTable2_VariantSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, a := range model.Table2() {
			benchSink = fmt.Sprintf("%s:%d", a.Name, a.Params())
		}
	}
}

// BenchmarkAblation_SequenceParallel compares the sequence-parallel and
// all-reduce TP variants in ground truth (paper §2.2's emerging technique).
func BenchmarkAblation_SequenceParallel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(b, model.GPT3_15B(), 4, 1, 1, 4)
		plain := benchSim(b, cfg, 61).Duration()
		cfg.SequenceParallel = true
		sp := benchSim(b, cfg, 61).Duration()
		ratio = float64(sp) / float64(plain)
	}
	b.ReportMetric(ratio, "sp/ar-iter-ratio")
}

// BenchmarkWhatIfFusion measures the operator-fusion counterfactual from
// the paper's Section 3.4 motivation.
func BenchmarkWhatIfFusion(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 2, 1, 1, 4)
	profiled := benchSim(b, cfg, 63)
	g, err := execgraph.Build(profiled, execgraph.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rep, err := analysis.WhatIfFusion(g, analysis.DefaultFusionOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup = rep.Speedup()
	}
	b.ReportMetric(speedup, "fusion-speedup")
}

// BenchmarkSweep_SharedCalibration measures the campaign hot path: an
// 8-scenario Evaluate against prepared base state, where every scenario
// shares one execution graph, kernel library and fitted model. The
// per-scenario cost is what a sweep service pays per design point.
func BenchmarkSweep_SharedCalibration(b *testing.B) {
	ctx := context.Background()
	tk := New(WithConcurrency(4))
	cfg, err := DeploymentConfig(GPT3_15B(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Microbatches = 4
	base, err := tk.Prepare(ctx, cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	scenarios := append(GridSweep(GPT3_15B(), []int{2}, []int{1, 2}, []int{1, 2}),
		BaselineScenario(),
		ArchScenario(GPT3_V1()),
		ClassScaleScenario(KCGEMM, 0.5),
		FusionScenario(),
	)
	b.ResetTimer()
	b.ReportAllocs()
	var feasible int
	for i := 0; i < b.N; i++ {
		sweep, err := tk.EvaluateState(ctx, base, scenarios...)
		if err != nil {
			b.Fatal(err)
		}
		feasible = len(sweep.Top(len(scenarios)))
	}
	b.ReportMetric(float64(feasible), "feasible-scenarios")
}

// BenchmarkSweepThroughput measures the raw per-scenario prediction cost
// with memoization disabled: every iteration re-predicts each scenario
// against the prepared base state, exercising direct graph synthesis (no
// trace round trip), copy-on-write retiming, and the pooled simulators.
func BenchmarkSweepThroughput(b *testing.B) {
	ctx := context.Background()
	tk := New(WithConcurrency(4), WithScenarioCache(false))
	cfg, err := DeploymentConfig(GPT3_15B(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Microbatches = 4
	base, err := tk.Prepare(ctx, cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	scenarios := append(GridSweep(GPT3_15B(), []int{2}, []int{1, 2}, []int{1, 2}),
		BaselineScenario(),
		ArchScenario(GPT3_V1()),
		ClassScaleScenario(KCGEMM, 0.5),
		FusionScenario(),
	)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep, err := tk.EvaluateState(ctx, base, scenarios...)
		if err != nil {
			b.Fatal(err)
		}
		if len(sweep.Results) != len(scenarios) {
			b.Fatal("scenario lost")
		}
	}
	b.ReportMetric(float64(len(scenarios)), "scenarios/sweep")
}

// BenchmarkReplayEngine measures the replay engines head to head on the
// retimed what-if hot path: a campaign of kernel-class retimings and
// fusion what-ifs (each a full replay of the shared base graph) under the
// compiled structure-of-arrays engine and the reference interpreter.
// Sub-benchmarks carry an engine=<compiled|interpreted> label that
// cmd/benchjson records in BENCH_sweep.json, so the compiled engine's
// speedup is tracked release over release; the engines are bit-identical
// (TestEngineEquivalenceCampaign), so only the costs may differ.
func BenchmarkReplayEngine(b *testing.B) {
	ctx := context.Background()
	cfg, err := DeploymentConfig(GPT3_15B(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Microbatches = 4
	scenarios := []Scenario{BaselineScenario(), FusionScenario()}
	for _, class := range []KernelClass{KCGEMM, KCAttention, KCElementwise, KCNorm, KCComm} {
		scenarios = append(scenarios,
			ClassScaleScenario(class, 0.5),
			ClassScaleScenario(class, 0.9),
		)
	}
	for _, kind := range []EngineKind{EngineCompiled, EngineInterpreted} {
		tk := New(WithConcurrency(4), WithScenarioCache(false), WithSeed(42), WithReplayEngine(kind))
		base, err := tk.Prepare(ctx, cfg, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("engine=%s", kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sweep, err := tk.EvaluateState(ctx, base, scenarios...)
				if err != nil {
					b.Fatal(err)
				}
				if len(sweep.Results) != len(scenarios) {
					b.Fatal("scenario lost")
				}
			}
		})
	}
}

// BenchmarkSweep_FabricCampaign measures the fabric-binding hot path per
// topology: a campaign of fabric × degradation what-ifs evaluated against
// prepared base state, with memoization disabled so every iteration pays
// the full re-pricing cost. Sub-benchmarks carry a fabric=<preset> label
// that cmd/benchjson records in BENCH_sweep.json, making entries comparable
// across topologies.
func BenchmarkSweep_FabricCampaign(b *testing.B) {
	ctx := context.Background()
	cfg, err := DeploymentConfig(GPT3_15B(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Microbatches = 4
	world := cfg.Map.WorldSize()
	for _, fb := range []Fabric{
		H100Cluster(world),
		NVLDomainFabric(world),
		OversubscribedFabric(world, 4),
	} {
		fb := fb
		b.Run("fabric="+fb.FabricName(), func(b *testing.B) {
			tk := New(WithConcurrency(4), WithScenarioCache(false))
			base, err := tk.Prepare(ctx, cfg, 42)
			if err != nil {
				b.Fatal(err)
			}
			scenarios := append([]Scenario{BaselineScenario()},
				FabricSweep([]Fabric{fb}, []float64{1, 0.5})...)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sweep, err := tk.EvaluateState(ctx, base, scenarios...)
				if err != nil {
					b.Fatal(err)
				}
				if len(sweep.Results) != len(scenarios) {
					b.Fatal("scenario lost")
				}
			}
			b.ReportMetric(float64(len(scenarios)), "scenarios/sweep")
		})
	}
}

// BenchmarkSweep_DiskCacheWarmStart measures what the disk-backed scenario
// cache buys a fresh process: each iteration is one full "process" — load
// the persisted rank traces, build campaign state, evaluate the grid —
// against either an empty cache directory (cache=cold: pays calibration,
// simulation, and the cache writes) or one populated by a previous run
// (cache=warm: calibration and every scenario served off disk). The
// sub-benchmark cache=<cold|warm> labels land in BENCH_sweep.json via
// cmd/benchjson, so the warm-start speedup is tracked release over
// release.
func BenchmarkSweep_DiskCacheWarmStart(b *testing.B) {
	ctx := context.Background()
	cfg, err := DeploymentConfig(GPT3_15B(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Microbatches = 4
	traceDir := b.TempDir()
	m, err := New(WithSeed(42)).Profile(ctx, cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	if err := SaveTraces(m, traceDir); err != nil {
		b.Fatal(err)
	}
	scenarios := append(GridSweep(GPT3_15B(), []int{2}, []int{1, 2}, []int{1, 2}),
		BaselineScenario())

	// run is one cold-started process sharing only the cache directory.
	run := func(b *testing.B, cacheDir string) *BaseState {
		traces, err := LoadTraces(traceDir)
		if err != nil {
			b.Fatal(err)
		}
		tk := New(WithSeed(42), WithConcurrency(4), WithDiskCache(cacheDir))
		st, err := tk.PrepareTraces(ctx, cfg, traces)
		if err != nil {
			b.Fatal(err)
		}
		sweep, err := tk.EvaluateState(ctx, st, scenarios...)
		if err != nil {
			b.Fatal(err)
		}
		if len(sweep.Results) != len(scenarios) {
			b.Fatal("scenario lost")
		}
		return st
	}

	b.Run("cache=cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			run(b, dir)
		}
	})
	b.Run("cache=warm", func(b *testing.B) {
		dir := b.TempDir()
		run(b, dir) // populate the cache once, untimed
		b.ResetTimer()
		b.ReportAllocs()
		var hits int64
		for i := 0; i < b.N; i++ {
			st := run(b, dir)
			hits = st.CacheStats().DiskHits
		}
		if hits == 0 {
			b.Fatal("warm run served nothing from disk")
		}
		b.ReportMetric(float64(hits), "disk-hits")
	})
}

// BenchmarkSweep_ScheduleCampaign measures the schedule what-if hot path
// per pipeline schedule: one shared profile/calibration, each sub-benchmark
// re-predicting the base deployment under one schedule (regenerated slot
// structure — interleaved chunk P2P, zero-bubble split backward — against
// the shared kernel library). Sub-benchmarks carry a schedule=<name> label
// that cmd/benchjson records in BENCH_sweep.json; the pred-ms metric tracks
// each schedule's predicted iteration time so regressions in the schedule
// economics fail loudly.
func BenchmarkSweep_ScheduleCampaign(b *testing.B) {
	ctx := context.Background()
	cfg, err := DeploymentConfig(GPT3_15B(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Microbatches = 4
	tk := New(WithConcurrency(4), WithScenarioCache(false))
	base, err := tk.Prepare(ctx, cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range []string{"1f1b", "gpipe", "interleaved2", "zb-h1"} {
		spec := spec
		b.Run("schedule="+spec, func(b *testing.B) {
			scenarios := []Scenario{BaselineScenario(), ScheduleScenario(spec)}
			b.ResetTimer()
			b.ReportAllocs()
			var last ScenarioResult
			for i := 0; i < b.N; i++ {
				sweep, err := tk.EvaluateState(ctx, base, scenarios...)
				if err != nil {
					b.Fatal(err)
				}
				if len(sweep.Results) != len(scenarios) {
					b.Fatal("scenario lost")
				}
				for _, r := range sweep.Results {
					if r.Kind == "schedule" {
						if !r.Feasible() {
							b.Fatalf("%s infeasible: %s", r.Name, r.Err)
						}
						last = r
					}
				}
			}
			b.ReportMetric(float64(last.Iteration)/1e6, "pred-ms")
		})
	}
}

// BenchmarkPlan_BeamVsExhaustive measures the deployment planner per
// search strategy over one fig7-style space, with the scenario cache
// disabled so every promoted point pays its full simulation cost.
// Sub-benchmarks carry a strategy=<name> label that cmd/benchjson records
// in BENCH_sweep.json; the simulated-points metric shows the guided
// strategies promoting strictly fewer points than exhaustive while the
// best-ms metric shows equal frontier quality.
func BenchmarkPlan_BeamVsExhaustive(b *testing.B) {
	ctx := context.Background()
	cfg, err := DeploymentConfig(GPT3_15B(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Microbatches = 4
	space := Space{
		PP:         []int{1, 2, 4},
		DP:         []int{1, 2},
		Microbatch: []int{4, 8},
	}
	mem := MemoryModel{GPUMemBytes: 192 << 30, ZeRO: ZeROOptimizer}
	for _, strat := range []PlanStrategy{
		ExhaustiveStrategy(),
		BeamStrategy(4),
		HalvingStrategy(3),
	} {
		strat := strat
		b.Run("strategy="+strat.Name(), func(b *testing.B) {
			tk := New(WithConcurrency(4), WithScenarioCache(false))
			base, err := tk.Prepare(ctx, cfg, 42)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			var simulated, bestMS float64
			for i := 0; i < b.N; i++ {
				res, err := tk.PlanState(ctx, base, space,
					WithPlanStrategy(strat), WithMemoryModel(mem))
				if err != nil {
					b.Fatal(err)
				}
				best, ok := res.Best()
				if !ok {
					b.Fatal("no feasible point")
				}
				simulated = float64(res.Stats.Simulated)
				bestMS = analysis.Millis(best.Iteration)
			}
			b.ReportMetric(simulated, "simulated-points")
			b.ReportMetric(bestMS, "best-ms")
		})
	}
}

// BenchmarkPlan_BranchAndBound measures exact search at scale: one
// fig7-style profile and a ~1.3×10⁵-point space over pipeline/data
// degrees, microbatch count, pipeline schedule, and network degrade
// factors, with branch-and-bound required to return the provably optimal
// point. The sub-benchmark carries strategy=/space= labels that
// cmd/benchjson records in BENCH_sweep.json; the simulated-points and
// bound-pruned metrics show how little of the space pays for full
// simulation, and best-ms pins the answer so quality regressions fail
// loudly alongside throughput ones.
func BenchmarkPlan_BranchAndBound(b *testing.B) {
	ctx := context.Background()
	cfg, err := DeploymentConfig(GPT3_15B(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Microbatches = 4
	mbs := make([]int, 128)
	for i := range mbs {
		mbs[i] = 4 + i
	}
	degrade := make([][]float64, 16)
	for i := range degrade {
		degrade[i] = NetworkDegradeFactors(1 - 0.05*float64(i))
	}
	space := Space{
		PP:         []int{1, 2, 4, 8},
		DP:         []int{1, 2, 4, 8},
		Microbatch: mbs,
		Schedules:  []string{"1f1b", "gpipe", "interleaved2", "zb-h1"},
		Degrade:    degrade,
	}
	mem := MemoryModel{GPUMemBytes: 192 << 30, ZeRO: ZeROOptimizer}
	tk := New(WithConcurrency(4), WithScenarioCache(false))
	base, err := tk.Prepare(ctx, cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("strategy=bnb/space=%d", space.Size(cfg)), func(b *testing.B) {
		b.ResetTimer()
		b.ReportAllocs()
		var stats PlanStats
		var bestMS float64
		for i := 0; i < b.N; i++ {
			res, err := tk.PlanState(ctx, base, space,
				WithPlanStrategy(BranchAndBoundStrategy(0)), WithMemoryModel(mem))
			if err != nil {
				b.Fatal(err)
			}
			best, ok := res.Best()
			if !ok {
				b.Fatal("no feasible point")
			}
			stats = res.Stats
			bestMS = analysis.Millis(best.Iteration)
		}
		b.ReportMetric(float64(stats.Simulated), "simulated-points")
		b.ReportMetric(float64(stats.BoundPruned), "bound-pruned")
		b.ReportMetric(bestMS, "best-ms")
	})
}

// BenchmarkMultiIterationProfile measures the multi-step profiling window
// and iteration splitting path.
func BenchmarkMultiIterationProfile(b *testing.B) {
	cfg := benchConfig(b, model.GPT3_15B(), 2, 1, 1, 4)
	b.ReportAllocs()
	var iters int
	for i := 0; i < b.N; i++ {
		out, err := cluster.RunN(cfg, cluster.DefaultSimConfig(cfg.Map.WorldSize(), 65), 3)
		if err != nil {
			b.Fatal(err)
		}
		iters = len(trace.SplitIterationsMulti(out))
	}
	b.ReportMetric(float64(iters), "iterations")
}
