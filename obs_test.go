package lumos

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestMetricsSnapshotDeterminism is the observability determinism gate:
// two identical traced plan campaigns over the same space must produce
// byte-identical Prometheus snapshots — every registered series is an
// event count or occupancy gauge and the exposition carries no
// timestamps — and the same multiset of trace-event labels. Only ts/dur
// may differ between runs; if a wall-clock-dependent value ever leaks
// into a snapshot, this test catches it before a dashboard does.
func TestMetricsSnapshotDeterminism(t *testing.T) {
	run := func() (string, map[string]int) {
		ctx := context.Background()
		tracer := NewTracer()
		tk := New(WithSeed(42), WithConcurrency(4), WithTracer(tracer))
		base := sweepBase(t)
		st, err := tk.Prepare(ctx, base, 42)
		if err != nil {
			t.Fatal(err)
		}
		// The degrade axis forces the compile/retime/replay path, so the
		// engine counters and scenario spans are exercised, not just the
		// campaign-fabric synthesis path.
		space := Space{
			PP: []int{1, 2}, DP: []int{1, 2}, Microbatch: []int{4, 8},
			Degrade: [][]float64{nil, NetworkDegradeFactors(0.5)},
		}
		if _, err := tk.PlanState(ctx, st, space,
			WithPlanStrategy(BranchAndBoundStrategy(0))); err != nil {
			t.Fatal(err)
		}

		reg := NewRegistry()
		tk.RegisterMetrics(reg)
		st.RegisterMetrics(reg)
		var buf bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}

		// Sweep workers append concurrently, so event order is not stable
		// across runs — the cat/name/phase multiset is.
		shape := map[string]int{}
		for _, e := range tracer.Events() {
			shape[e.Cat+"/"+e.Name+"/"+e.Ph]++
		}
		return buf.String(), shape
	}

	expo1, shape1 := run()
	expo2, shape2 := run()
	if expo1 == "" {
		t.Fatal("first run produced an empty exposition")
	}
	if expo1 != expo2 {
		t.Errorf("metric snapshots differ between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", expo1, expo2)
	}
	if !reflect.DeepEqual(shape1, shape2) {
		t.Errorf("trace shapes differ between identical runs:\nrun 1: %v\nrun 2: %v", shape1, shape2)
	}
}
