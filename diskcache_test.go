package lumos

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// saveSweepTraces profiles the sweep base once and persists it as a
// rank_*.json trace dir, the same artifact the CLI consumes — so these
// tests exercise the exact path two `lumos sweep -traces DIR` processes
// share.
func saveSweepTraces(t *testing.T, cfg Config) string {
	t.Helper()
	dir := t.TempDir()
	m, err := New(WithSeed(42)).Profile(context.Background(), cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTraces(m, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func loadTraces(t *testing.T, dir string) *Multi {
	t.Helper()
	m, err := LoadTraces(dir)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDiskCacheColdWarmBitIdentity is the tentpole acceptance test for the
// disk layer: a second process (fresh toolkit) pointed at the same cache
// dir serves the campaign from disk — zero kernel-library rebuilds, disk
// hits > 0 — and its results are bit-identical to both the cold run and a
// fully uncached run.
func TestDiskCacheColdWarmBitIdentity(t *testing.T) {
	ctx := context.Background()
	cfg := sweepBase(t)
	traceDir := saveSweepTraces(t, cfg)
	cacheDir := t.TempDir()
	scenarios := campaignScenarios()

	// Cold process: populates the cache.
	cold := New(WithSeed(42), WithDiskCache(cacheDir))
	stCold, err := cold.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	first, err := cold.EvaluateState(ctx, stCold, scenarios...)
	if err != nil {
		t.Fatal(err)
	}
	if _, libs := cold.Counters(); libs != 1 {
		t.Fatalf("cold run calibrated %d times, want 1", libs)
	}
	coldStats := stCold.CacheStats()
	if coldStats.DiskHits != 0 {
		t.Fatalf("cold run reported %d disk hits, want 0", coldStats.DiskHits)
	}
	if coldStats.Disk.Puts == 0 {
		t.Fatal("cold run persisted nothing")
	}

	// Warm process: a fresh toolkit (no shared memory) at the same dir.
	warm := New(WithSeed(42), WithDiskCache(cacheDir))
	stWarm, err := warm.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	second, err := warm.EvaluateState(ctx, stWarm, scenarios...)
	if err != nil {
		t.Fatal(err)
	}
	if _, libs := warm.Counters(); libs != 0 {
		t.Fatalf("warm run rebuilt the kernel library %d times, want 0 (cached calibration)", libs)
	}
	warmStats := stWarm.CacheStats()
	if warmStats.DiskHits == 0 {
		t.Fatal("warm run served no scenarios from disk")
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("disk-cache-served sweep diverged from the cold run")
	}
	if !reflect.DeepEqual(first.Base, second.Base) {
		t.Fatal("warm base point diverged from the cold run")
	}

	// Ground truth: a toolkit with no cache at all agrees exactly.
	plain := New(WithSeed(42))
	stPlain, err := plain.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := plain.EvaluateState(ctx, stPlain, scenarios...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(uncached.Results, second.Results) {
		t.Fatal("disk-cache-served sweep diverged from an uncached run")
	}
}

// TestPlanDiskCacheWarmStart reproduces the ISSUE acceptance criterion: a
// second plan process at the same -cache-dir reports memo/disk hits > 0 and
// returns a bit-identical frontier, without re-fitting the kernel model.
func TestPlanDiskCacheWarmStart(t *testing.T) {
	ctx := context.Background()
	cfg := sweepBase(t)
	traceDir := saveSweepTraces(t, cfg)
	cacheDir := t.TempDir()
	space := Space{
		PP:         []int{1, 2},
		DP:         []int{1, 2},
		Microbatch: []int{4, 8},
	}

	cold := New(WithSeed(42), WithDiskCache(cacheDir))
	stCold, err := cold.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	first, err := cold.PlanState(ctx, stCold, space, WithPlanStrategy(ExhaustiveStrategy()))
	if err != nil {
		t.Fatal(err)
	}

	warm := New(WithSeed(42), WithDiskCache(cacheDir))
	stWarm, err := warm.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	second, err := warm.PlanState(ctx, stWarm, space, WithPlanStrategy(ExhaustiveStrategy()))
	if err != nil {
		t.Fatal(err)
	}

	if _, libs := warm.Counters(); libs != 0 {
		t.Fatalf("warm plan rebuilt the kernel library %d times, want 0", libs)
	}
	stats := stWarm.CacheStats()
	if stats.MemoHits+stats.DiskHits == 0 {
		t.Fatal("warm plan reported no cache hits")
	}
	if stats.DiskHits == 0 {
		t.Fatal("warm plan served nothing from disk")
	}
	if !reflect.DeepEqual(first.Frontier, second.Frontier) {
		t.Fatal("warm plan frontier diverged from the cold run")
	}
	if !reflect.DeepEqual(first.Dominated, second.Dominated) {
		t.Fatal("warm plan dominated set diverged from the cold run")
	}
}

// TestDiskCacheCorruptionRecovery truncates and garbles every cache entry
// after a cold run; the warm run must detect, discard and recompute —
// yielding identical results — rather than crash or serve garbage.
func TestDiskCacheCorruptionRecovery(t *testing.T) {
	ctx := context.Background()
	cfg := sweepBase(t)
	traceDir := saveSweepTraces(t, cfg)
	cacheDir := t.TempDir()
	scenarios := campaignScenarios()

	cold := New(WithSeed(42), WithDiskCache(cacheDir))
	stCold, err := cold.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	first, err := cold.EvaluateState(ctx, stCold, scenarios...)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every entry: truncate half of them, garble the rest.
	var entries []string
	err = filepath.Walk(filepath.Join(cacheDir, "objects"), func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		entries = append(entries, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("cold run wrote no cache entries")
	}
	for i, p := range entries {
		if i%2 == 0 {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, data[:len(data)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := os.WriteFile(p, []byte("{corrupt"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	warm := New(WithSeed(42), WithDiskCache(cacheDir))
	stWarm, err := warm.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	second, err := warm.EvaluateState(ctx, stWarm, scenarios...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("results diverged after cache corruption")
	}
	stats := stWarm.CacheStats()
	if stats.Disk.Discards == 0 {
		t.Fatal("corrupted entries were not detected and discarded")
	}
	if stats.DiskHits != 0 {
		t.Fatalf("%d corrupt entries served as hits", stats.DiskHits)
	}
	if _, libs := warm.Counters(); libs != 1 {
		t.Fatalf("warm run after corruption calibrated %d times, want 1 (recomputed)", libs)
	}
}

// TestDiskCacheKeyedByBindings ensures entries never leak across bindings:
// the same traces under a different fabric must miss everything.
func TestDiskCacheKeyedByBindings(t *testing.T) {
	ctx := context.Background()
	cfg := sweepBase(t)
	traceDir := saveSweepTraces(t, cfg)
	cacheDir := t.TempDir()
	scenarios := campaignScenarios()

	cold := New(WithSeed(42), WithDiskCache(cacheDir))
	stCold, err := cold.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.EvaluateState(ctx, stCold, scenarios...); err != nil {
		t.Fatal(err)
	}

	other := New(WithSeed(42), WithDiskCache(cacheDir), WithFabric(OversubscribedFabric(8, 4)))
	stOther, err := other.PrepareTraces(ctx, cfg, loadTraces(t, traceDir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.EvaluateState(ctx, stOther, scenarios...); err != nil {
		t.Fatal(err)
	}
	if hits := stOther.CacheStats().DiskHits; hits != 0 {
		t.Fatalf("a different fabric binding served %d entries from the cache", hits)
	}
	if _, libs := other.Counters(); libs != 1 {
		t.Fatalf("a different fabric binding reused the calibration (%d builds, want 1)", libs)
	}
}
